package typestate

import (
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

// figure1Program builds the paper's running example (Figure 1):
//
//	main() { f = new File /*h1*/; foo(f);
//	         f = new File /*h2*/; foo(f);
//	         f = new File /*h3*/; foo(f); }
//	foo(File f) { f.open(); f.close(); }
//
// Using f directly as the argument variable makes the abstract states match
// the paper's A1–A5 exactly.
func figure1Program() *ir.Program {
	p := ir.NewProgram("main")
	p.Add(&ir.Proc{Name: "foo", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "open"},
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "close"},
	}}})
	p.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "f", Site: "h1"},
		&ir.Call{Callee: "foo"},
		&ir.Prim{Kind: ir.New, Dst: "f", Site: "h2"},
		&ir.Call{Callee: "foo"},
		&ir.Prim{Kind: ir.New, Dst: "f", Site: "h3"},
		&ir.Call{Callee: "foo"},
	}}})
	return p
}

func figure1Analysis(t *testing.T) (*Analysis, *core.Analysis[AbsID, RelID, FormulaID]) {
	t.Helper()
	prog := figure1Program()
	file := FileProperty()
	ts, err := NewAnalysis(prog, map[string]*Property{"h1": file, "h2": file, "h3": file}, nil)
	if err != nil {
		t.Fatalf("NewAnalysis: %v", err)
	}
	an, err := core.NewAnalysis[AbsID, RelID, FormulaID](ts, prog)
	if err != nil {
		t.Fatalf("core.NewAnalysis: %v", err)
	}
	return ts, an
}

func mustState(t *testing.T, ts *Analysis, site, state string, must, mustNot []string) AbsID {
	t.Helper()
	s, err := ts.MakeState(site, state, must, mustNot)
	if err != nil {
		t.Fatalf("MakeState(%s,%s): %v", site, state, err)
	}
	return s
}

// TestFigure1TopDownSummaries checks that the conventional top-down
// analysis computes the five context-specific summaries T1–T5 of Figure 1
// for procedure foo (plus one summary for the bootstrap "no object" state).
func TestFigure1TopDownSummaries(t *testing.T) {
	ts, an := figure1Analysis(t)
	res := an.RunTD(ts.InitialState(), core.TDConfig())
	if !res.Completed() {
		t.Fatalf("TD did not complete: %v", res.Err)
	}
	want := []struct {
		name          string
		site          string
		must, mustNot []string
	}{
		{"T1", "h1", []string{"f"}, nil},
		{"T2", "h2", []string{"f"}, nil},
		{"T3", "h1", nil, []string{"f"}},
		{"T4", "h2", nil, []string{"f"}},
		{"T5", "h3", []string{"f"}, nil},
	}
	for _, w := range want {
		in := mustState(t, ts, w.site, "closed", w.must, w.mustNot)
		exits := res.TD.Summaries["foo"][in]
		if len(exits) != 1 || exits[0] != in {
			var got []string
			for _, e := range exits {
				got = append(got, ts.StateString(e))
			}
			t.Errorf("%s: summary of foo for %s = %v, want identity", w.name, ts.StateString(in), got)
		}
	}
	// Five paper summaries plus the bootstrap state's identity summary.
	if n := res.TD.SummaryCount("foo"); n != 6 {
		t.Errorf("foo has %d top-down summaries, want 6", n)
	}
	// No object may reach the error state in this program.
	for _, s := range res.ExitStates("main", ts.InitialState()) {
		if ts.IsError(s) {
			t.Errorf("error state at main exit: %s", ts.StateString(s))
		}
	}
}

// TestFigure1BottomUpSummaries checks that the conventional bottom-up
// analysis computes exactly the four relational cases B1–B4 of Figure 1 for
// procedure foo, and that they instantiate correctly on the paper's states.
func TestFigure1BottomUpSummaries(t *testing.T) {
	ts, an := figure1Analysis(t)
	res := an.RunBU(ts.InitialState(), core.BUConfig())
	if !res.Completed() {
		t.Fatalf("BU did not complete: %v", res.Err)
	}
	foo := res.BU["foo"]
	if foo.Size() != 4 {
		for _, r := range foo.Rels {
			t.Logf("relation: %s", ts.RelString(r))
		}
		t.Fatalf("foo has %d bottom-up summaries, want 4 (B1–B4)", foo.Size())
	}
	// Instantiate on the paper's incoming states and check the outcomes.
	closedMust := func(site string) AbsID { return mustState(t, ts, site, "closed", []string{"f"}, nil) }
	closedNot := func(site string) AbsID { return mustState(t, ts, site, "closed", nil, []string{"f"}) }
	cases := []struct {
		in   AbsID
		want AbsID
	}{
		// B2: f in must set → (ι_close ∘ ι_open)(closed) = closed.
		{closedMust("h1"), closedMust("h1")},
		{closedMust("h3"), closedMust("h3")},
		// B1: f in must-not set → unchanged.
		{closedNot("h1"), closedNot("h1")},
		{closedNot("h2"), closedNot("h2")},
	}
	for _, c := range cases {
		out := core.ApplySummary[AbsID, RelID, FormulaID](ts, foo, c.in)
		if len(out) != 1 || out[0] != c.want {
			var got []string
			for _, o := range out {
				got = append(got, ts.StateString(o))
			}
			t.Errorf("summary(%s) = %v, want %s", ts.StateString(c.in), got, ts.StateString(c.want))
		}
	}
	// B3: f unknown and may-alias → error (weak update).
	unknown := mustState(t, ts, "h1", "closed", nil, nil)
	out := core.ApplySummary[AbsID, RelID, FormulaID](ts, foo, unknown)
	if len(out) != 1 || !ts.IsError(out[0]) {
		t.Errorf("summary on unknown aliasing should give error, got %v", out)
	}
	// An opened file with f in the must set goes to error (close∘open of
	// opened is error).
	opened := mustState(t, ts, "h1", "opened", []string{"f"}, nil)
	out = core.ApplySummary[AbsID, RelID, FormulaID](ts, foo, opened)
	if len(out) != 1 || !ts.IsError(out[0]) {
		t.Errorf("summary on opened file should give error, got %v", out)
	}
}

// TestOverviewHybridWalkthrough replays Section 2.3: with k=2 and θ=2,
// SWIFT triggers the bottom-up analysis after the second call site, keeps
// the two dominant cases B1 and B2, and answers the remaining calls from
// them — computing strictly fewer top-down summaries than the conventional
// top-down analysis while producing the same program result.
func TestOverviewHybridWalkthrough(t *testing.T) {
	ts, an := figure1Analysis(t)
	cfg := core.DefaultConfig()
	cfg.K = 2
	cfg.Theta = 2
	swift := an.RunSwift(ts.InitialState(), cfg)
	if !swift.Completed() {
		t.Fatalf("SWIFT did not complete: %v", swift.Err)
	}
	if len(swift.Triggered) != 1 || swift.Triggered[0] != "foo" {
		t.Fatalf("triggered = %v, want [foo]", swift.Triggered)
	}
	foo := swift.BU["foo"]
	if foo.Size() != 2 {
		for _, r := range foo.Rels {
			t.Logf("kept: %s", ts.RelString(r))
		}
		t.Fatalf("pruned summary keeps %d cases, want 2 (B1 and B2)", foo.Size())
	}
	// The kept cases must be B1 and B2: they handle must and must-not
	// incoming states, while the pruned B3/B4 (unknown aliasing) fall in Σ.
	mustIn := mustState(t, ts, "h3", "closed", []string{"f"}, nil)
	notIn := mustState(t, ts, "h2", "closed", nil, []string{"f"})
	unknown := mustState(t, ts, "h1", "closed", nil, nil)
	if core.Ignores[AbsID, RelID, FormulaID](ts, foo, mustIn) {
		t.Errorf("must-alias state should not be ignored")
	}
	if core.Ignores[AbsID, RelID, FormulaID](ts, foo, notIn) {
		t.Errorf("must-not-alias state should not be ignored")
	}
	if !core.Ignores[AbsID, RelID, FormulaID](ts, foo, unknown) {
		t.Errorf("unknown-alias state should be in the ignored set Σ")
	}
	if n := core.ApplySummary[AbsID, RelID, FormulaID](ts, foo, mustIn); len(n) != 1 || n[0] != mustIn {
		t.Errorf("B2 should map %s to itself", ts.StateString(mustIn))
	}

	td := an.RunTD(ts.InitialState(), core.TDConfig())
	if got, want := swift.TD.SummaryCount("foo"), td.TD.SummaryCount("foo"); got >= want {
		t.Errorf("SWIFT computes %d top-down summaries for foo, TD computes %d; want strictly fewer", got, want)
	}
	// Same final result (Theorem 3.1).
	swiftExit := swift.ExitStates("main", ts.InitialState())
	tdExit := td.ExitStates("main", ts.InitialState())
	if len(swiftExit) != len(tdExit) {
		t.Fatalf("exit states differ: swift=%d td=%d", len(swiftExit), len(tdExit))
	}
	for i := range swiftExit {
		if swiftExit[i] != tdExit[i] {
			t.Errorf("exit state %d differs: %s vs %s", i, ts.StateString(swiftExit[i]), ts.StateString(tdExit[i]))
		}
	}
}
