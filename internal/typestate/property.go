// Package typestate instantiates the SWIFT framework on the type-state
// analysis of the paper (Sections 2 and 3, after Fink et al.): each abstract
// state is a tuple (h, t, a, n) of an allocation site, a finite-state-
// machine state, a must-alias set and a must-not-alias set of access paths.
// The bottom-up side implements the relational domain of Figure 3, extended
// with must-not sets and access paths of the form v and v.f, exactly as the
// paper's full implementation.
package typestate

import (
	"fmt"
	"sort"
)

// State is a local state index within one property's finite-state machine.
type State uint8

// Property is a type-state property: a finite-state machine over the
// methods of a tracked type. State 0 is the initial state; Error designates
// the absorbing error state. Methods not listed leave the state unchanged.
type Property struct {
	// Name identifies the property (e.g. "File").
	Name string
	// States names the FSM states; index 0 is the initial state.
	States []string
	// Error is the index of the error state. Every transition out of Error
	// is forced back to Error (the error state is absorbing), so an error
	// reached anywhere inside a procedure is still visible at its exit.
	Error State
	// Methods maps a method name to its transition function, given as a
	// dense table indexed by state.
	Methods map[string][]State
}

// Validate checks internal consistency of the property definition.
func (p *Property) Validate() error {
	if len(p.States) == 0 {
		return fmt.Errorf("typestate: property %q has no states", p.Name)
	}
	if len(p.States) > 250 {
		return fmt.Errorf("typestate: property %q has too many states", p.Name)
	}
	if int(p.Error) >= len(p.States) {
		return fmt.Errorf("typestate: property %q: error state out of range", p.Name)
	}
	for m, tab := range p.Methods {
		if len(tab) != len(p.States) {
			return fmt.Errorf("typestate: property %q: method %q has %d entries, want %d",
				p.Name, m, len(tab), len(p.States))
		}
		for s, next := range tab {
			if int(next) >= len(p.States) {
				return fmt.Errorf("typestate: property %q: method %q maps state %d out of range",
					p.Name, m, s)
			}
		}
	}
	return nil
}

// MethodNames returns the property's method names in sorted order.
func (p *Property) MethodNames() []string {
	out := make([]string, 0, len(p.Methods))
	for m := range p.Methods {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// stateIndex returns the index of a named state.
func (p *Property) stateIndex(name string) (State, bool) {
	for i, s := range p.States {
		if s == name {
			return State(i), true
		}
	}
	return 0, false
}

// NewProperty builds a property from a transition list. states[0] is the
// initial state; errState names the error state; each transition is
// (method, from, to). Any (method, state) pair without an explicit
// transition moves to the error state — the strict convention of type-state
// checking ("calling a method in the wrong state is an error") — except that
// transitions out of the error state always stay in the error state.
func NewProperty(name string, states []string, errState string, transitions [][3]string) (*Property, error) {
	p := &Property{Name: name, States: states, Methods: map[string][]State{}}
	found := false
	for i, s := range states {
		if s == errState {
			p.Error = State(i)
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("typestate: error state %q not among states of %q", errState, name)
	}
	for _, tr := range transitions {
		m, from, to := tr[0], tr[1], tr[2]
		fromIdx, ok := p.stateIndex(from)
		if !ok {
			return nil, fmt.Errorf("typestate: property %q: transition %s uses unknown state %q", name, m, from)
		}
		toIdx, ok := p.stateIndex(to)
		if !ok {
			return nil, fmt.Errorf("typestate: property %q: transition %s uses unknown state %q", name, m, to)
		}
		tab, ok := p.Methods[m]
		if !ok {
			tab = make([]State, len(states))
			for i := range tab {
				tab[i] = p.Error
			}
			tab[p.Error] = p.Error
			p.Methods[m] = tab
		}
		tab[fromIdx] = toIdx
	}
	// The error state is absorbing.
	for _, tab := range p.Methods {
		tab[p.Error] = p.Error
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// mustProperty is NewProperty for the package's built-in definitions.
func mustProperty(name string, states []string, errState string, transitions [][3]string) *Property {
	p, err := NewProperty(name, states, errState, transitions)
	if err != nil {
		panic(err)
	}
	return p
}

// FileProperty is the classic file protocol used throughout the paper's
// examples: a file starts closed, open() moves closed→opened, close() moves
// opened→closed, and any other use is an error.
func FileProperty() *Property {
	return mustProperty("File",
		[]string{"closed", "opened", "error"}, "error",
		[][3]string{
			{"open", "closed", "opened"},
			{"close", "opened", "closed"},
			{"read", "opened", "opened"},
			{"write", "opened", "opened"},
		})
}

// IteratorProperty models java.util.Iterator: next() may only be called
// after hasNext() has been checked.
func IteratorProperty() *Property {
	return mustProperty("Iterator",
		[]string{"start", "checked", "error"}, "error",
		[][3]string{
			{"hasNext", "start", "checked"},
			{"hasNext", "checked", "checked"},
			{"next", "checked", "start"},
		})
}

// ConnectionProperty models a network connection: it must be opened before
// use and not used after close.
func ConnectionProperty() *Property {
	return mustProperty("Connection",
		[]string{"fresh", "open", "closed", "error"}, "error",
		[][3]string{
			{"connect", "fresh", "open"},
			{"send", "open", "open"},
			{"recv", "open", "open"},
			{"close", "open", "closed"},
		})
}

// StreamProperty models a one-shot stream: it yields elements until
// exhausted and must not be read after exhaustion.
func StreamProperty() *Property {
	return mustProperty("Stream",
		[]string{"ready", "done", "error"}, "error",
		[][3]string{
			{"get", "ready", "ready"},
			{"finish", "ready", "done"},
		})
}

// KeyProperty models an enumeration/dictionary cursor with explicit reset.
func KeyProperty() *Property {
	return mustProperty("KeyedCursor",
		[]string{"idle", "active", "error"}, "error",
		[][3]string{
			{"begin", "idle", "active"},
			{"step", "active", "active"},
			{"end", "active", "idle"},
			{"reset", "idle", "idle"},
			{"reset", "active", "idle"},
		})
}
