package typestate

import (
	"strings"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

func TestBuiltinPropertiesValid(t *testing.T) {
	for _, p := range []*Property{
		FileProperty(), IteratorProperty(), ConnectionProperty(),
		StreamProperty(), KeyProperty(),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		// The error state must be absorbing under every method.
		for m, tab := range p.Methods {
			if tab[p.Error] != p.Error {
				t.Errorf("%s.%s leaves the error state", p.Name, m)
			}
		}
	}
}

func TestNewPropertySemantics(t *testing.T) {
	p, err := NewProperty("Lock", []string{"unlocked", "locked", "err"}, "err",
		[][3]string{
			{"acquire", "unlocked", "locked"},
			{"release", "locked", "unlocked"},
		})
	if err != nil {
		t.Fatal(err)
	}
	// Unlisted (method, state) pairs go to the error state.
	if got := p.Methods["acquire"][1]; got != p.Error {
		t.Errorf("double acquire goes to state %d, want error", got)
	}
	if got := p.Methods["release"][0]; got != p.Error {
		t.Errorf("release while unlocked goes to state %d, want error", got)
	}
	names := p.MethodNames()
	if len(names) != 2 || names[0] != "acquire" {
		t.Errorf("MethodNames = %v", names)
	}
}

func TestNewPropertyRejects(t *testing.T) {
	if _, err := NewProperty("X", []string{"a"}, "missing", nil); err == nil {
		t.Error("missing error state accepted")
	}
	if _, err := NewProperty("X", []string{"a", "e"}, "e",
		[][3]string{{"m", "ghost", "a"}}); err == nil || !strings.Contains(err.Error(), "unknown state") {
		t.Errorf("unknown from-state: err = %v", err)
	}
	if _, err := NewProperty("X", []string{"a", "e"}, "e",
		[][3]string{{"m", "a", "ghost"}}); err == nil || !strings.Contains(err.Error(), "unknown state") {
		t.Errorf("unknown to-state: err = %v", err)
	}
}

func TestMakeStateErrors(t *testing.T) {
	ts, _ := conditionsAnalysis(t)
	if _, err := ts.MakeState("nosite", "", nil, nil); err == nil {
		t.Error("unknown site accepted")
	}
	if _, err := ts.MakeState("h1", "nostate", nil, nil); err == nil {
		t.Error("unknown state accepted")
	}
	if _, err := ts.MakeState("h3", "something", nil, nil); err == nil {
		t.Error("state on untracked site accepted")
	}
	if _, err := ts.MakeState("h1", "closed", []string{"ghost"}, nil); err == nil {
		t.Error("unknown path accepted")
	}
	s, err := ts.MakeState("h1", "closed", []string{"u", "v.f"}, []string{"w"})
	if err != nil {
		t.Fatal(err)
	}
	str := ts.StateString(s)
	if !strings.Contains(str, "h1") || !strings.Contains(str, "closed") {
		t.Errorf("StateString = %q", str)
	}
}

func TestErrorSitesAndIsError(t *testing.T) {
	ts, _ := conditionsAnalysis(t)
	errState, err := ts.MakeState("h1", "error", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	okState, _ := ts.MakeState("h2", "start", nil, nil)
	if !ts.IsError(errState) || ts.IsError(okState) {
		t.Error("IsError wrong")
	}
	if ts.IsError(ts.InitialState()) {
		t.Error("bootstrap state marked as error")
	}
	sites := ts.ErrorSites([]AbsID{errState, okState, ts.InitialState()})
	if len(sites) != 1 || sites[0] != "h1" {
		t.Errorf("ErrorSites = %v", sites)
	}
	if ts.Site(ts.InitialState()) != "<none>" {
		t.Errorf("Site(init) = %q", ts.Site(ts.InitialState()))
	}
}

func TestCountsExposed(t *testing.T) {
	ts, _ := conditionsAnalysis(t)
	if ts.PathCount() <= 0 || ts.SiteCount() <= 1 || ts.StateCount() <= 0 || ts.RelCount() <= 0 {
		t.Error("counters empty")
	}
}

// TestMultiPropertyPrograms checks that two properties coexist: transitions
// of one never affect objects of the other.
func TestMultiPropertyPrograms(t *testing.T) {
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "f", Site: "hf"},
		&ir.Prim{Kind: ir.New, Dst: "i", Site: "hi"},
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "open"},
		&ir.Prim{Kind: ir.TSCall, Dst: "i", Method: "hasNext"},
		&ir.Prim{Kind: ir.TSCall, Dst: "i", Method: "next"},
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "close"},
	}}})
	ts, err := NewAnalysis(prog, map[string]*Property{
		"hf": FileProperty(),
		"hi": IteratorProperty(),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.NewAnalysis[AbsID, RelID, FormulaID](ts, prog)
	if err != nil {
		t.Fatal(err)
	}
	res := an.RunTD(ts.InitialState(), core.TDConfig())
	if !res.Completed() {
		t.Fatal(res.Err)
	}
	for _, s := range res.ExitStates("main", ts.InitialState()) {
		if ts.IsError(s) {
			t.Errorf("spurious error: %s", ts.StateString(s))
		}
	}
	// Misuse of the iterator protocol errors only hi.
	prog2 := ir.NewProgram("main")
	prog2.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "f", Site: "hf"},
		&ir.Prim{Kind: ir.New, Dst: "i", Site: "hi"},
		&ir.Prim{Kind: ir.TSCall, Dst: "i", Method: "next"}, // before hasNext
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "open"},
	}}})
	ts2, _ := NewAnalysis(prog2, map[string]*Property{
		"hf": FileProperty(),
		"hi": IteratorProperty(),
	}, nil)
	an2, _ := core.NewAnalysis[AbsID, RelID, FormulaID](ts2, prog2)
	res2 := an2.RunTD(ts2.InitialState(), core.TDConfig())
	sites := ts2.ErrorSites(res2.TD.AllStates())
	if len(sites) != 1 || sites[0] != "hi" {
		t.Errorf("error sites = %v, want [hi]", sites)
	}
}

// TestRelStringForms covers the relation printer's branches.
func TestRelStringForms(t *testing.T) {
	ts, prims := conditionsAnalysis(t)
	seenConst, seenXform := false, false
	for _, p := range prims {
		for _, r := range ts.RTrans(p, ts.Identity()) {
			s := ts.RelString(r)
			if strings.HasPrefix(s, "const") {
				seenConst = true
			} else if strings.Contains(s, "if") {
				seenXform = true
			}
		}
	}
	if !seenConst || !seenXform {
		t.Errorf("RelString coverage: const=%v xform=%v", seenConst, seenXform)
	}
	if got := ts.RelString(ts.Identity()); !strings.Contains(got, "id") {
		t.Errorf("identity renders as %q", got)
	}
}
