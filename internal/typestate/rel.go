package typestate

import (
	"fmt"

	"swift/internal/ir"
)

// This file implements the bottom-up relational domain of Figure 3,
// extended with must-not sets: abstract relations are either constant
// relations (σ, φ) or transformers (ι, a0, a1, n0, n1, φ). A transformer
// relates an incoming state (h, t, a, n) satisfying φ to
//
//	(h, ι(t), (a ∩ a0) ∪ a1, (n ∩ n0) ∪ n1).
//
// The keep components a0/n0 are co-sets (they start as the universe in id#
// and only shrink), the gen components a1/n1 are explicit sets, and the
// precondition φ is a conjunction of have/notHave/mustNot/notMustNot/
// mayalias literals over the incoming state.

type relKind uint8

const (
	kConst relKind = iota // constant relation (σ, φ)
	kXform                // transformer (ι, a0, a1, n0, n1, φ)
)

// rel is the structural form of an abstract relation.
type rel struct {
	kind relKind
	out  AbsID // kConst: the constant output state
	iota TransID
	aK   coSet // a0
	aG   SetID // a1
	nK   coSet // n0
	nG   SetID // n1
	pre  FormulaID
}

// RelID identifies an interned abstract relation.
type RelID int32

// internRel canonicalizes and interns a relation. Canonicalization removes
// gen paths from the keep components (p ∈ a1 makes p's membership in a0
// irrelevant), which merges syntactically different but semantically equal
// transformers.
func (a *Analysis) internRel(r rel) RelID {
	t := a.tab
	if r.kind == kXform {
		if g := t.setElems(r.aG); len(g) > 0 {
			r.aK = t.coMinus(r.aK, g)
		}
		if g := t.setElems(r.nG); len(g) > 0 {
			r.nK = t.coMinus(r.nK, g)
		}
	}
	return RelID(a.rels.intern(r, func() rel { return r }))
}

func (a *Analysis) relOf(id RelID) rel { return a.rels.at(int32(id)) }

// Applies implements core.Client: s ∈ dom(r) iff s satisfies the
// precondition.
func (a *Analysis) Applies(r RelID, s AbsID) bool {
	return a.tab.holds(a.relOf(r).pre, a.tab.absOf(s))
}

// Apply implements core.Client: relations are functional, so the result is
// a single state.
func (a *Analysis) Apply(r RelID, s AbsID) []AbsID {
	t := a.tab
	rr := a.relOf(r)
	if rr.kind == kConst {
		return []AbsID{rr.out}
	}
	st := t.absOf(s)
	out := absState{
		h:  st.h,
		t:  t.applyTrans(rr.iota, st.t),
		a:  t.setUnion(t.coIntersectSet(st.a, rr.aK), rr.aG),
		nc: t.applyMustNot(st.nc, rr.nK, rr.nG),
	}
	return []AbsID{t.internAbs(out)}
}

// PreOf implements core.Client.
func (a *Analysis) PreOf(r RelID) FormulaID { return a.relOf(r).pre }

// RelString renders a relation for diagnostics and tests.
func (a *Analysis) RelString(r RelID) string {
	t := a.tab
	rr := a.relOf(r)
	if rr.kind == kConst {
		return fmt.Sprintf("const%s if %s", a.StateString(rr.out), t.formulaString(rr.pre))
	}
	iota := "ι"
	if rr.iota == t.idTrans {
		iota = "id"
	} else if rr.iota == t.errTrans {
		iota = "λt.error"
	}
	aK := "V"
	if rr.aK.Co {
		if elems := t.setElems(rr.aK.Set); len(elems) > 0 {
			aK = "V∖{" + a.pathSetString(rr.aK.Set) + "}"
		}
	} else {
		aK = "{" + a.pathSetString(rr.aK.Set) + "}"
	}
	nK := "V"
	if rr.nK.Co {
		if elems := t.setElems(rr.nK.Set); len(elems) > 0 {
			nK = "V∖{" + a.pathSetString(rr.nK.Set) + "}"
		}
	} else {
		nK = "{" + a.pathSetString(rr.nK.Set) + "}"
	}
	return fmt.Sprintf("(%s, %s, {%s}, %s, {%s}) if %s",
		iota, aK, a.pathSetString(rr.aG), nK, a.pathSetString(rr.nG),
		t.formulaString(rr.pre))
}

// Reduce implements core.Client: drop relations whose meaning is contained
// in another's — same constant output or same transformer components under
// a weaker precondition. Branch joins constantly produce such pairs (the
// identity under `true` from one path and under `mustNot(v)` from another),
// and keeping only the weakest-precondition representative is what lets one
// relational case cover a procedure's dominant behaviour.
func (a *Analysis) Reduce(rels []RelID) []RelID {
	if len(rels) < 2 {
		return rels
	}
	type group struct{ ids []RelID }
	byTransform := map[rel]*group{}
	order := make([]rel, 0, len(rels))
	for _, id := range rels {
		k := a.relOf(id)
		k.pre = -1
		g := byTransform[k]
		if g == nil {
			g = &group{}
			byTransform[k] = g
			order = append(order, k)
		}
		g.ids = append(g.ids, id)
	}
	out := make([]RelID, 0, len(rels))
	for _, k := range order {
		g := byTransform[k]
		for _, r := range g.ids {
			dominated := false
			for _, s := range g.ids {
				if s != r && a.tab.implies(a.relOf(r).pre, a.relOf(s).pre) {
					dominated = true
					break
				}
			}
			if !dominated {
				out = append(out, r)
			}
		}
	}
	return out
}

// ---- three-valued output-membership status ----

type tri uint8

const (
	triNo tri = iota
	triYes
	triUnknown
)

// formHas reports whether the formula contains the literal.
func (t *tables) formHas(f FormulaID, l literal) bool {
	lits := t.formLits(f)
	lo, hi := 0, len(lits)
	for lo < hi {
		mid := (lo + hi) / 2
		if lits[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(lits) && lits[lo] == l
}

// outStatusA decides whether path p is in the transformer's output must
// set: yes if generated, no if dropped from the keep set, and otherwise
// whatever the precondition says about p's membership in the incoming must
// set (unknown if it says nothing).
func (a *Analysis) outStatusA(r rel, p PathID) tri {
	t := a.tab
	if !t.relevant[p] {
		return triNo
	}
	if t.setHas(r.aG, p) {
		return triYes
	}
	if !t.coHas(r.aK, p) {
		return triNo
	}
	if t.formHas(r.pre, mkLit(p, litInA)) {
		return triYes
	}
	if t.formHas(r.pre, mkLit(p, litNotInA)) {
		return triNo
	}
	return triUnknown
}

// outStatusN is outStatusA for the must-not set.
func (a *Analysis) outStatusN(r rel, p PathID) tri {
	t := a.tab
	if !t.relevant[p] {
		return triYes
	}
	if t.setHas(r.nG, p) {
		return triYes
	}
	if !t.coHas(r.nK, p) {
		return triNo
	}
	if t.formHas(r.pre, mkLit(p, litInN)) {
		return triYes
	}
	if t.formHas(r.pre, mkLit(p, litNotInN)) {
		return triNo
	}
	return triUnknown
}

// relCase is one branch of a case split: the relation with a strengthened
// precondition, plus the decided fact.
type relCase struct {
	r   rel
	yes bool
}

// casesOutA resolves p's output-must membership, splitting the precondition
// when it is unknown (the "sometimes" rows of Figure 3's rtrans).
func (a *Analysis) casesOutA(r rel, p PathID) []relCase {
	switch a.outStatusA(r, p) {
	case triYes:
		return []relCase{{r: r, yes: true}}
	case triNo:
		return []relCase{{r: r, yes: false}}
	}
	var out []relCase
	if f, ok := a.tab.conj(r.pre, mkLit(p, litInA)); ok {
		y := r
		y.pre = f
		out = append(out, relCase{r: y, yes: true})
	}
	if f, ok := a.tab.conj(r.pre, mkLit(p, litNotInA)); ok {
		n := r
		n.pre = f
		out = append(out, relCase{r: n, yes: false})
	}
	return out
}

// casesOutN is casesOutA for the must-not set.
func (a *Analysis) casesOutN(r rel, p PathID) []relCase {
	switch a.outStatusN(r, p) {
	case triYes:
		return []relCase{{r: r, yes: true}}
	case triNo:
		return []relCase{{r: r, yes: false}}
	}
	var out []relCase
	if f, ok := a.tab.conj(r.pre, mkLit(p, litInN)); ok {
		y := r
		y.pre = f
		out = append(out, relCase{r: y, yes: true})
	}
	if f, ok := a.tab.conj(r.pre, mkLit(p, litNotInN)); ok {
		n := r
		n.pre = f
		out = append(out, relCase{r: n, yes: false})
	}
	return out
}

// casesMay resolves the may-alias status of path p with the (preserved)
// incoming object.
func (a *Analysis) casesMay(r rel, p PathID) []relCase {
	if a.tab.formHas(r.pre, mkLit(p, litMay)) {
		return []relCase{{r: r, yes: true}}
	}
	if a.tab.formHas(r.pre, mkLit(p, litNotMay)) {
		return []relCase{{r: r, yes: false}}
	}
	var out []relCase
	if f, ok := a.tab.conj(r.pre, mkLit(p, litMay)); ok {
		y := r
		y.pre = f
		out = append(out, relCase{r: y, yes: true})
	}
	if f, ok := a.tab.conj(r.pre, mkLit(p, litNotMay)); ok {
		n := r
		n.pre = f
		out = append(out, relCase{r: n, yes: false})
	}
	return out
}

// ---- rtrans ----

// RTrans implements core.Client: the relational transfer functions of
// Figure 3, extended to must-not sets and one-field paths. Constant
// relations are transferred by running the top-down trans on their output
// state; transformers are updated component-wise, case-splitting on unknown
// alias statuses.
func (a *Analysis) RTrans(c *ir.Prim, r RelID) []RelID {
	t := a.tab
	rr := a.relOf(r)
	if rr.kind == kConst {
		outs := a.Trans(c, rr.out)
		res := make([]RelID, 0, len(outs))
		for _, o := range outs {
			res = append(res, a.internRel(rel{kind: kConst, out: o, pre: rr.pre}))
		}
		return res
	}
	switch c.Kind {
	case ir.Nop, ir.Assert:
		return []RelID{r}

	case ir.New:
		rooted := t.rooted(c.Dst)
		vp := a.mustPath(c.Dst, "")
		x := rr
		x.aK = t.coMinus(x.aK, rooted)
		x.aG = t.setMinus(x.aG, rooted)
		x.nK = t.coMinus(x.nK, rooted)
		x.nG = t.setMinus(x.nG, rooted)
		if t.relevant[vp] {
			x.nG = t.setInsert(x.nG, vp)
		}
		out := []RelID{a.internRel(x)}
		if site := t.siteIDs[c.Site]; a.spawnsAt(site) {
			fresh := absState{
				h:  site,
				t:  t.propBase[t.sitePropOf[site]],
				a:  t.internSet([]PathID{vp}),
				nc: t.internSet(rooted),
			}
			out = append(out, a.internRel(rel{kind: kConst, out: t.internAbs(fresh), pre: rr.pre}))
		}
		return out

	case ir.Copy:
		if c.Dst == c.Src {
			return []RelID{r}
		}
		return a.copyLikeR(rr, c.Dst, a.mustPath(c.Src, ""))

	case ir.Load:
		return a.copyLikeR(rr, c.Dst, a.mustPath(c.Src, c.Field))

	case ir.Store:
		return a.storeR(rr, c.Dst, c.Field, a.mustPath(c.Src, ""))

	case ir.TSCall:
		return a.tsCallR(rr, a.mustPath(c.Dst, ""), c.Method)

	case ir.Kill:
		rooted := t.rooted(c.Dst)
		x := rr
		x.aK = t.coMinus(x.aK, rooted)
		x.aG = t.setMinus(x.aG, rooted)
		x.nK = t.coMinus(x.nK, rooted)
		x.nG = t.setMinus(x.nG, rooted)
		return []RelID{a.internRel(x)}
	}
	panic(fmt.Sprintf("typestate: RTrans on unknown primitive %v", c.Kind))
}

// copyLikeR is the relational counterpart of copyLike: case-split on the
// source's status in the output must set, then (when not a must-alias) in
// the output must-not set.
func (a *Analysis) copyLikeR(rr rel, dst string, src PathID) []RelID {
	t := a.tab
	rooted := t.rooted(dst)
	dp := a.mustPath(dst, "")
	killDst := func(x rel) rel {
		x.aK = t.coMinus(x.aK, rooted)
		x.aG = t.setMinus(x.aG, rooted)
		x.nK = t.coMinus(x.nK, rooted)
		x.nG = t.setMinus(x.nG, rooted)
		return x
	}
	var out []RelID
	for _, ca := range a.casesOutA(rr, src) {
		if ca.yes {
			x := killDst(ca.r)
			if t.relevant[dp] {
				x.aG = t.setInsert(x.aG, dp)
			}
			out = append(out, a.internRel(x))
			continue
		}
		for _, cn := range a.casesOutN(ca.r, src) {
			x := killDst(cn.r)
			if cn.yes && t.relevant[dp] {
				x.nG = t.setInsert(x.nG, dp)
			}
			out = append(out, a.internRel(x))
		}
	}
	return out
}

// storeR is the relational counterpart of storeTrans.
func (a *Analysis) storeR(rr rel, dst, field string, src PathID) []RelID {
	t := a.tab
	ff := t.withField(field)
	vf := a.mustPath(dst, field)
	killA := func(x rel) rel {
		x.aK = t.coMinus(x.aK, ff)
		x.aG = t.setMinus(x.aG, ff)
		return x
	}
	killN := func(x rel) rel {
		x.nK = t.coMinus(x.nK, ff)
		x.nG = t.setMinus(x.nG, ff)
		return x
	}
	var out []RelID
	for _, ca := range a.casesOutA(rr, src) {
		if ca.yes {
			x := killN(killA(ca.r))
			if t.relevant[vf] {
				x.aG = t.setInsert(x.aG, vf)
			}
			out = append(out, a.internRel(x))
			continue
		}
		for _, cn := range a.casesOutN(ca.r, src) {
			if cn.yes {
				x := cn.r
				if t.relevant[vf] {
					x.nG = t.setInsert(x.nG, vf)
				}
				out = append(out, a.internRel(killA(x)))
			} else {
				out = append(out, a.internRel(killN(killA(cn.r))))
			}
		}
	}
	return out
}

// tsCallR is the relational counterpart of tsCallTrans: strong update when
// the receiver must-alias the object, no-op when it must not, and the
// may-alias split otherwise.
func (a *Analysis) tsCallR(rr rel, v PathID, method string) []RelID {
	t := a.tab
	var out []RelID
	for _, ca := range a.casesOutA(rr, v) {
		if ca.yes {
			x := ca.r
			x.iota = t.compose(t.methodTransformer(method), x.iota)
			out = append(out, a.internRel(x))
			continue
		}
		for _, cn := range a.casesOutN(ca.r, v) {
			if cn.yes {
				out = append(out, a.internRel(cn.r))
				continue
			}
			for _, cm := range a.casesMay(cn.r, v) {
				if cm.yes {
					x := cm.r
					x.iota = t.compose(t.errTrans, x.iota)
					out = append(out, a.internRel(x))
				} else {
					out = append(out, a.internRel(cm.r))
				}
			}
		}
	}
	return out
}

// ---- weakest preconditions and composition ----

// wpFormula computes dom-relative wp(r, f): the literal-wise rules of
// Figure 3. ok=false means no incoming state in dom(r) can establish f.
func (a *Analysis) wpFormula(rr rel, f FormulaID) (FormulaID, bool) {
	t := a.tab
	if rr.kind == kConst {
		if t.holds(f, t.absOf(rr.out)) {
			return 0, true // true: the constant output always satisfies f
		}
		return 0, false
	}
	acc := FormulaID(0)
	for _, l := range t.formLits(f) {
		p := l.path()
		var keep literal
		switch l.kind() {
		case litInA:
			switch a.outStatusA(rr, p) {
			case triYes:
				continue
			case triNo:
				return 0, false
			}
			keep = mkLit(p, litInA)
		case litNotInA:
			switch a.outStatusA(rr, p) {
			case triYes:
				return 0, false
			case triNo:
				continue
			}
			keep = mkLit(p, litNotInA)
		case litInN:
			switch a.outStatusN(rr, p) {
			case triYes:
				continue
			case triNo:
				return 0, false
			}
			keep = mkLit(p, litInN)
		case litNotInN:
			switch a.outStatusN(rr, p) {
			case triYes:
				return 0, false
			case triNo:
				continue
			}
			keep = mkLit(p, litNotInN)
		case litMay, litNotMay:
			// Transformers preserve the tracked object, so may-alias facts
			// transfer unchanged — but the precondition may already decide
			// them.
			if t.formHas(rr.pre, l) {
				continue
			}
			if t.formHas(rr.pre, l.negated()) {
				return 0, false
			}
			keep = l
		}
		var ok bool
		acc, ok = t.conj(acc, keep)
		if !ok {
			return 0, false
		}
	}
	return acc, true
}

// WPre implements core.Client: dom(r) ∧ wp(r, post), or nothing when void.
func (a *Analysis) WPre(r RelID, post FormulaID) []FormulaID {
	w, ok := a.wpFormula(a.relOf(r), post)
	if !ok {
		return nil
	}
	f, ok := a.tab.conjFormulas(a.relOf(r).pre, w)
	if !ok {
		return nil
	}
	return []FormulaID{f}
}

// RComp implements core.Client: the rcomp operator of Figure 3. The
// precondition of the second relation is pulled back through the first via
// wp; the state-transformation parts compose per the r;r′ rules.
func (a *Analysis) RComp(r1, r2 RelID) []RelID {
	t := a.tab
	a1, a2 := a.relOf(r1), a.relOf(r2)
	w, ok := a.wpFormula(a1, a2.pre)
	if !ok {
		return nil
	}
	pre, ok := t.conjFormulas(a1.pre, w)
	if !ok {
		return nil
	}
	if a2.kind == kConst {
		return []RelID{a.internRel(rel{kind: kConst, out: a2.out, pre: pre})}
	}
	if a1.kind == kConst {
		st := t.absOf(a1.out)
		out := absState{
			h:  st.h,
			t:  t.applyTrans(a2.iota, st.t),
			a:  t.setUnion(t.coIntersectSet(st.a, a2.aK), a2.aG),
			nc: t.applyMustNot(st.nc, a2.nK, a2.nG),
		}
		return []RelID{a.internRel(rel{kind: kConst, out: t.internAbs(out), pre: pre})}
	}
	x := rel{
		kind: kXform,
		iota: t.compose(a2.iota, a1.iota),
		aK:   t.coIntersect(a1.aK, a2.aK),
		aG:   t.setUnion(t.coIntersectSet(a1.aG, a2.aK), a2.aG),
		nK:   t.coIntersect(a1.nK, a2.nK),
		nG:   t.setUnion(t.coIntersectSet(a1.nG, a2.nK), a2.nG),
		pre:  pre,
	}
	return []RelID{a.internRel(x)}
}
