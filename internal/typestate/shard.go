package typestate

import (
	"sync"
	"sync/atomic"
)

// This file implements the sharded interning substrate shared by every
// table of the type-state client (paths, path sets, transformers, abstract
// states, precondition formulas, relations). It exists so concurrent
// bottom-up workers (core.RunSwiftAsync, the paper's Section 7
// parallelization) can intern new values without serializing on one global
// write lock: PR 1's read/write-split Synchronized wrapper still funneled
// every mutating client operation — Trans, RTrans, RComp, Apply, WPre —
// through a single sync.RWMutex, which was the top scalability item on the
// roadmap.
//
// Design: a two-phase lookup with a striped write path.
//
//   - The key→ID map of each table is hash-partitioned into shardCount
//     shards, each guarded by its own RWMutex. A lookup hashes the value's
//     canonical encoding, read-locks only that shard, and — on a miss —
//     write-locks only that shard to install the new entry (with a
//     double-check, so concurrent interns of the same value always return
//     the same ID).
//   - Dense IDs are allocated from one atomic counter per table. A
//     fetch-add is wait-free, so ID allocation never becomes the
//     serialization point the old global write lock was.
//   - ID→value lookups go through a paged append-only store whose page
//     spine is a fixed slice of atomic pointers; readers never take any
//     lock. A slot is written before the ID is published (returned by
//     intern, or made visible through a shard map), so any goroutine that
//     legitimately holds an ID can dereference it.
//
// ID stability: in a single-threaded run the atomic counter assigns IDs in
// exactly the order unique values are first interned — the same order the
// previous map+slice implementation used — so the serial engines (td, bu,
// swift) produce byte-identical results before and after sharding. Only
// the asynchronous engine can observe different ID orders run to run, and
// its counters are timing-dependent by design. Concurrent interns of the
// same value return the same ID in all interleavings; denseness holds
// because the counter is bumped only after the shard's double-check
// misses, i.e. exactly once per unique value.

const (
	// shardCount is the number of lock stripes per table. 64 comfortably
	// exceeds the worker counts the async engine spawns (one per in-flight
	// trigger), so mutating traffic rarely collides on a stripe.
	shardCount = 64
	shardMask  = shardCount - 1

	// The paged store holds up to pageCount*pageSize values per table.
	// 2^14 pages of 2^12 slots bounds a table at 2^26 IDs — far beyond any
	// benchmark in the suite — while keeping the page spine at 16K atomic
	// pointers (128 KiB) per table.
	pageBits  = 12
	pageSize  = 1 << pageBits
	pageMask  = pageSize - 1
	pageCount = 1 << 14
)

// pagedStore is an append-only ID→value array safe for concurrent use.
// set(id, v) must happen before id is published to other goroutines (the
// interner guarantees this); get never locks.
type pagedStore[V any] struct {
	pages []atomic.Pointer[[pageSize]V]
}

func newPagedStore[V any]() pagedStore[V] {
	return pagedStore[V]{pages: make([]atomic.Pointer[[pageSize]V], pageCount)}
}

func (ps *pagedStore[V]) set(id int32, v V) {
	slot := &ps.pages[int(id)>>pageBits]
	p := slot.Load()
	if p == nil {
		fresh := new([pageSize]V)
		if !slot.CompareAndSwap(nil, fresh) {
			p = slot.Load() // another writer installed the page first
		} else {
			p = fresh
		}
	}
	p[int(id)&pageMask] = v
}

func (ps *pagedStore[V]) get(id int32) V {
	return ps.pages[int(id)>>pageBits].Load()[int(id)&pageMask]
}

// internShard is one lock stripe of an interner's key→ID map. The padding
// keeps adjacent stripes on separate cache lines so uncontended shards do
// not false-share.
type internShard[K comparable] struct {
	mu sync.RWMutex
	m  map[K]int32
	_  [24]byte
}

// interner assigns dense int32 IDs to unique values of a comparable key
// type. Safe for concurrent use; see the file comment for the scheme.
type interner[K comparable, V any] struct {
	hash   func(K) uint64
	n      atomic.Int32
	store  pagedStore[V]
	shards [shardCount]internShard[K]
}

func newInterner[K comparable, V any](hash func(K) uint64) *interner[K, V] {
	it := &interner[K, V]{hash: hash, store: newPagedStore[V]()}
	for i := range it.shards {
		it.shards[i].m = map[K]int32{}
	}
	return it
}

// intern returns the dense ID of k, calling value to materialize the
// stored form on first intern only. Concurrent interns of equal keys
// return the same ID.
func (it *interner[K, V]) intern(k K, value func() V) int32 {
	sh := &it.shards[it.hash(k)&shardMask]
	sh.mu.RLock()
	id, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[k]; ok {
		return id
	}
	id = it.n.Add(1) - 1
	// The slot is written before the ID is published via the map (or the
	// return value), so holders of an ID can always dereference it.
	it.store.set(id, value())
	sh.m[k] = id
	return id
}

// lookup returns the ID of k without interning.
func (it *interner[K, V]) lookup(k K) (int32, bool) {
	sh := &it.shards[it.hash(k)&shardMask]
	sh.mu.RLock()
	id, ok := sh.m[k]
	sh.mu.RUnlock()
	return id, ok
}

// at returns the value interned under id. The caller must hold a
// legitimately published id.
func (it *interner[K, V]) at(id int32) V { return it.store.get(id) }

// size returns the number of interned values. Concurrently with writers it
// is a lower bound on published entries plus in-flight reservations.
func (it *interner[K, V]) size() int { return int(it.n.Load()) }

// memoMap is a sharded memoization map for derived values that carry no
// ID of their own (transformer composition, method transformers). Both
// sides of a racing put compute equal values — the memoized functions are
// deterministic — so last-write-wins is safe.
type memoMap[K comparable, V any] struct {
	hash   func(K) uint64
	shards [shardCount]memoShard[K, V]
}

type memoShard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
	_  [24]byte
}

func newMemoMap[K comparable, V any](hash func(K) uint64) *memoMap[K, V] {
	mm := &memoMap[K, V]{hash: hash}
	for i := range mm.shards {
		mm.shards[i].m = map[K]V{}
	}
	return mm
}

func (mm *memoMap[K, V]) get(k K) (V, bool) {
	sh := &mm.shards[mm.hash(k)&shardMask]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

func (mm *memoMap[K, V]) put(k K, v V) {
	sh := &mm.shards[mm.hash(k)&shardMask]
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// ---- hashing ----

// FNV-1a over the canonical encodings of interned values. The hash only
// picks a lock stripe — it plays no part in ID assignment — so its quality
// affects contention, never determinism.

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mix folds one 64-bit lane into a running FNV-style hash.
func mix(h, x uint64) uint64 {
	h ^= x
	h *= fnvPrime
	return h
}

func hashPath(p path) uint64 {
	return mix(hashString(p.base), hashString(p.field))
}

func hashAbs(s absState) uint64 {
	h := mix(uint64(fnvOffset), uint64(uint32(s.h)))
	h = mix(h, uint64(uint32(s.t)))
	h = mix(h, uint64(uint32(s.a)))
	return mix(h, uint64(uint32(s.nc)))
}

func hashTransPair(k [2]TransID) uint64 {
	return mix(mix(uint64(fnvOffset), uint64(uint32(k[0]))), uint64(uint32(k[1])))
}

func hashCoSet(h uint64, c coSet) uint64 {
	b := uint64(0)
	if c.Co {
		b = 1
	}
	return mix(mix(h, b), uint64(uint32(c.Set)))
}

func hashRel(r rel) uint64 {
	h := mix(uint64(fnvOffset), uint64(r.kind))
	h = mix(h, uint64(uint32(r.out)))
	h = mix(h, uint64(uint32(r.iota)))
	h = hashCoSet(h, r.aK)
	h = mix(h, uint64(uint32(r.aG)))
	h = hashCoSet(h, r.nK)
	h = mix(h, uint64(uint32(r.nG)))
	return mix(h, uint64(uint32(r.pre)))
}
