package typestate

// Tests and benchmarks for the sharded interning substrate (shard.go):
// concurrent ID agreement against a serial oracle, a -race hammer over the
// full client surface, serial-engine determinism, and the contention
// microbenchmark comparing the sharded interner with the old
// single-RWMutex discipline.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"swift/internal/core"
	"swift/internal/ir"
)

// workloadSets builds n distinct sorted path sets drawn from the analysis
// universe, deterministic in seed.
func workloadSets(ts *Analysis, n int, seed int64) [][]PathID {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	var out [][]PathID
	for len(out) < n {
		var s []PathID
		for p := 0; p < ts.tab.numPaths(); p++ {
			if rng.Intn(3) == 0 {
				s = append(s, PathID(p))
			}
		}
		// Salt with out-of-universe paths so n distinct sets exist even for
		// small universes; the interner never dereferences path IDs.
		s = append(s, PathID(ts.tab.numPaths()+rng.Intn(4*n)))
		k := i32key(s)
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// TestShardedInternerAgreement checks the core interner contract under
// concurrency: N goroutines interning identical and overlapping values all
// receive the same dense IDs, the ID space stays dense (one ID per unique
// value), every ID dereferences back to its value, and a serial oracle run
// interning the same values in first-occurrence order receives exactly the
// IDs the old map+slice implementation would have assigned.
func TestShardedInternerAgreement(t *testing.T) {
	ts, _ := conditionsAnalysis(t)
	sets := workloadSets(ts, 256, 1)

	// Serial oracle: IDs are assigned in first-intern order starting at the
	// construction-time table size.
	oracle, _ := conditionsAnalysis(t)
	base := oracle.tab.sets.size()
	for i, s := range sets {
		if got := oracle.tab.internSet(s); got != SetID(base+i) {
			t.Fatalf("serial intern %d: id %d, want %d (first-intern order broken)", i, got, base+i)
		}
	}

	const workers = 8
	ids := make([][]SetID, workers)
	preSize := ts.tab.sets.size()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]SetID, len(sets))
			// Each worker visits every value, rotated so different workers
			// race on different values at any instant.
			for i := range sets {
				j := (i + g*len(sets)/workers) % len(sets)
				ids[g][j] = ts.tab.internSet(sets[j])
			}
		}(g)
	}
	wg.Wait()

	for g := 1; g < workers; g++ {
		for i := range sets {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("worker %d disagrees on set %d: %d vs %d", g, i, ids[g][i], ids[0][i])
			}
		}
	}
	if got, want := ts.tab.sets.size(), preSize+len(sets); got != want {
		t.Fatalf("table size %d, want %d (denseness: one ID per unique value)", got, want)
	}
	seen := map[SetID]bool{}
	for i, id := range ids[0] {
		if int(id) < 0 || int(id) >= ts.tab.sets.size() {
			t.Fatalf("set %d: id %d out of dense range [0,%d)", i, id, ts.tab.sets.size())
		}
		if seen[id] {
			t.Fatalf("set %d: id %d assigned to two distinct values", i, id)
		}
		seen[id] = true
		if got := i32key(ts.tab.setElems(id)); got != i32key(sets[i]) {
			t.Fatalf("set %d: id %d dereferences to a different value", i, id)
		}
	}
}

// TestClientOpsRaceHammer drives the full client surface — Trans, RTrans,
// RComp, Applies, Apply, PreOf, PreHolds, PreImplies, WPre, Reduce — from
// N goroutines on one shared Analysis. Run with -race; the assertions only
// sanity-check that concurrently derived relations stay interned
// consistently.
func TestClientOpsRaceHammer(t *testing.T) {
	ts, prims := conditionsAnalysis(t)
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			rels := []RelID{ts.Identity()}
			states := []AbsID{ts.InitialState()}
			for step := 0; step < 400; step++ {
				c := prims[rng.Intn(len(prims))]
				r := rels[rng.Intn(len(rels))]
				s := states[rng.Intn(len(states))]
				switch step % 6 {
				case 0:
					if out := ts.RTrans(c, r); len(out) > 0 {
						rels = append(rels, out[rng.Intn(len(out))])
					}
				case 1:
					if out := ts.Trans(c, s); len(out) > 0 {
						states = append(states, out[rng.Intn(len(out))])
					}
				case 2:
					if ts.Applies(r, s) {
						states = append(states, ts.Apply(r, s)...)
					}
				case 3:
					if out := ts.RComp(r, rels[rng.Intn(len(rels))]); len(out) > 0 {
						rels = append(rels, out[0])
					}
				case 4:
					pre := ts.PreOf(r)
					ts.PreHolds(pre, s)
					ts.PreImplies(pre, ts.PreOf(rels[rng.Intn(len(rels))]))
					ts.WPre(r, pre)
				case 5:
					rels = append(ts.Reduce(rels[:min(len(rels), 16)]), rels[min(len(rels), 16):]...)
					if len(rels) == 0 {
						rels = []RelID{ts.Identity()}
					}
				}
			}
			// Re-interning a relation already derived must return the same
			// ID even while other workers keep mutating the tables.
			for _, r := range rels[:min(len(rels), 8)] {
				if got := ts.internRel(ts.relOf(r)); got != r {
					t.Errorf("worker %d: re-intern of relation %d returned %d", g, r, got)
				}
			}
		}(g)
	}
	wg.Wait()
}

// determinismFixture is a small program with a triggerable callee for
// running the serial hybrid engine end to end on the type-state client.
func determinismFixture() (*ir.Program, map[string]*Property) {
	prog := ir.NewProgram("main")
	prog.Add(&ir.Proc{Name: "use", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Choice{Alts: []ir.Cmd{
			&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "open"},
			&ir.Prim{Kind: ir.Nop},
		}},
		&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "close"},
	}}})
	prog.Add(&ir.Proc{Name: "main", Body: &ir.Seq{Cmds: []ir.Cmd{
		&ir.Prim{Kind: ir.New, Dst: "f", Site: "h1"},
		&ir.Loop{Body: &ir.Choice{Alts: []ir.Cmd{
			&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "open"},
			&ir.Prim{Kind: ir.TSCall, Dst: "f", Method: "close"},
		}}},
		&ir.Call{Callee: "use"},
		&ir.Call{Callee: "use"},
	}}})
	return prog, map[string]*Property{"h1": FileProperty()}
}

// renderRun runs the serial SWIFT engine on a fresh analysis and renders
// everything observable — exit states, per-procedure summaries, ignored
// sets, counters — into one string.
func renderRun(t *testing.T) string {
	t.Helper()
	prog, track := determinismFixture()
	ts, err := NewAnalysis(prog, track, nil)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.NewAnalysis[AbsID, RelID, FormulaID](ts, prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.K = 1
	res := an.RunSwift(ts.InitialState(), cfg)
	if !res.Completed() {
		t.Fatal(res.Err)
	}
	var b strings.Builder
	for _, s := range res.ExitStates("main", ts.InitialState()) {
		fmt.Fprintf(&b, "exit %d %s\n", s, ts.StateString(s))
	}
	procs := make([]string, 0, len(res.BU))
	for name := range res.BU {
		procs = append(procs, name)
	}
	sort.Strings(procs)
	for _, name := range procs {
		rs := res.BU[name]
		for _, r := range rs.Rels {
			fmt.Fprintf(&b, "bu %s rel %d %s\n", name, r, ts.RelString(r))
		}
		for _, q := range rs.Sigma {
			fmt.Fprintf(&b, "bu %s sigma %d %s\n", name, q, ts.FormulaString(q))
		}
	}
	fmt.Fprintf(&b, "triggered %v\n", res.Triggered)
	fmt.Fprintf(&b, "counts paths=%d sites=%d states=%d rels=%d\n",
		ts.PathCount(), ts.SiteCount(), ts.StateCount(), ts.RelCount())
	fmt.Fprintf(&b, "stats %+v td=%d\n", res.BUStats, res.TD.Steps)
	return b.String()
}

// TestSerialEngineDeterminism pins the ID-stability argument of shard.go:
// in a single-threaded run the atomic ID counter assigns IDs in exactly
// first-intern order, so two fresh serial runs — including the interned
// IDs embedded in the rendering — are byte-identical.
func TestSerialEngineDeterminism(t *testing.T) {
	a, b := renderRun(t), renderRun(t)
	if a != b {
		t.Fatalf("serial runs differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	if !strings.Contains(a, "bu use") {
		t.Fatalf("fixture did not summarize the callee:\n%s", a)
	}
}

// ---- contention microbenchmark ----

// globalLockTables reproduces the pre-sharding locking discipline: every
// potentially-interning operation behind one RWMutex write lock (what
// core.Synchronized did for Trans/RTrans/RComp/Apply/WPre before clients
// became internally sharded).
type globalLockTables struct {
	mu sync.RWMutex
	t  *tables
}

func (g *globalLockTables) internSet(s []PathID) SetID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.t.internSet(s)
}

func (g *globalLockTables) internAbs(s absState) AbsID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.t.internAbs(s)
}

// benchAnalysis builds an analysis outside the testing.T helpers.
func benchAnalysis(b *testing.B) *Analysis {
	b.Helper()
	prog, _ := conditionsProgram()
	ts, err := NewAnalysis(prog, map[string]*Property{
		"h1": FileProperty(),
		"h2": IteratorProperty(),
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

// contentionLoop is the shared workload: mostly re-interns of a hot value
// pool (the dominant traffic of a real run — Apply and RTrans rebuild
// existing states and sets) with a fresh per-goroutine value every 64th
// operation (the mutating tail). Run with -cpu 1,4,8 to see the scaling;
// the sharded interner overtakes the global write lock as goroutines grow.
func contentionLoop(pb *testing.PB, gid int, sets [][]PathID,
	internSet func([]PathID) SetID, internAbs func(absState) AbsID) {
	i := 0
	fresh := 0
	for pb.Next() {
		i++
		if i&63 == 0 {
			fresh++
			internSet([]PathID{PathID(1_000_000 + gid*100_000 + fresh)})
			continue
		}
		s := sets[i%len(sets)]
		id := internSet(s)
		internAbs(absState{h: SiteID(i & 1), t: GState(i % 3), a: id, nc: id})
	}
}

func BenchmarkInternContentionSharded(b *testing.B) {
	ts := benchAnalysis(b)
	sets := workloadSets(ts, 1024, 7)
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gid.Add(1))
		contentionLoop(pb, g, sets, ts.tab.internSet, ts.tab.internAbs)
	})
}

func BenchmarkInternContentionGlobalLock(b *testing.B) {
	ts := benchAnalysis(b)
	gl := &globalLockTables{t: ts.tab}
	sets := workloadSets(ts, 1024, 7)
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(gid.Add(1))
		contentionLoop(pb, g, sets, gl.internSet, gl.internAbs)
	})
}
