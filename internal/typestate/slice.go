package typestate

// This file implements core.SliceableClient: the type-state analysis
// decomposes by tracked allocation site. Each abstract state (h, t, a, n)
// tracks at most one object, allocated at site h, and h never changes
// after the spawn — a tuple for site X evolves without ever consulting
// tuples of other sites. The h=0 bootstrap flow (which performs all alias
// bookkeeping for not-yet-spawned objects) is likewise independent of
// which sites spawn. So restricting fresh-tuple spawning to one site
// yields exactly the monolithic run's states with h ∈ {0, X}, and the
// union over all tracked sites of the slices' error-observable states is
// the monolithic set (DESIGN.md spells out the argument).
//
// Each slice gets a fresh Analysis instance: the frozen construction
// tables (paths, sites, properties, may-alias matrix) are shared
// read-only, while every mutable interner is per-instance and re-seeded by
// initMutable in construction order. Sharing the mutable interners across
// concurrently running slices would be safe for memory but not for
// determinism — ID assignment would depend on scheduling, and interned IDs
// order the solvers' sorted sets, worklists and pruning tie-breaks.

import (
	"fmt"

	"swift/internal/core"
)

// Slices implements core.SliceableClient: one slice per tracked
// allocation site, identified by its site label, in site-ID (= sorted
// label) order. A program with no tracked sites gets the single bootstrap
// slice "<none>", which spawns nothing — the sliced run then degenerates
// to one monolithic bootstrap-only analysis.
func (a *Analysis) Slices() []core.SliceID {
	t := a.tab
	var out []core.SliceID
	for sid := 1; sid < len(t.sites); sid++ {
		if t.sitePropOf[sid] >= 0 {
			out = append(out, core.SliceID(t.sites[sid]))
		}
	}
	if len(out) == 0 {
		out = append(out, core.SliceID(t.sites[0]))
	}
	return out
}

// SliceClient implements core.SliceableClient: it returns a fresh,
// independently usable Analysis restricted to the slice's site, and the
// slice's bootstrap state in that instance's ID space.
func (a *Analysis) SliceClient(id core.SliceID) (core.Client[AbsID, RelID, FormulaID], AbsID, error) {
	if a.slice >= 0 {
		return nil, 0, fmt.Errorf("typestate: cannot slice the %q slice client", a.tab.sites[a.slice])
	}
	sid, ok := a.tab.siteIDs[string(id)]
	if !ok {
		return nil, 0, fmt.Errorf("typestate: unknown slice %q", id)
	}
	if sid != 0 && a.tab.sitePropOf[sid] < 0 {
		return nil, 0, fmt.Errorf("typestate: site %q is untracked and has no slice", id)
	}
	b := a.sliceClone(sid)
	return b, b.initial, nil
}

// sliceClone builds the slice's Analysis: shared frozen tables, fresh
// mutable interners seeded in the same order as NewAnalysis.
func (a *Analysis) sliceClone(sid SiteID) *Analysis {
	t := a.tab
	b := &Analysis{
		prog:  a.prog,
		track: a.track,
		slice: sid,
		tab: &tables{
			// Frozen after NewAnalysis; shared read-only across slices.
			paths:      t.paths,
			rootedOf:   t.rootedOf,
			fieldOf:    t.fieldOf,
			siteIDs:    t.siteIDs,
			sites:      t.sites,
			sitePropOf: t.sitePropOf,
			props:      t.props,
			propBase:   t.propBase,
			numG:       t.numG,
			propOfG:    t.propOfG,
			localOfG:   t.localOfG,
			isErrorG:   t.isErrorG,
			mayAlias:   t.mayAlias,
			relevant:   t.relevant,
			// Mutable: fresh per slice, seeded by initMutable below.
			sets:        newInterner[string, []PathID](hashString),
			trans:       newInterner[string, []GState](hashString),
			methodTrans: newMemoMap[string, TransID](hashString),
			composeMemo: newMemoMap[[2]TransID, TransID](hashTransPair),
			setOpMemo:   newMemoMap[setOpKey, SetID](hashSetOp),
			abs:         newInterner[absState, absState](hashAbs),
			forms:       newInterner[string, []literal](hashString),
		},
		rels: newInterner[rel, rel](hashRel),
	}
	b.initMutable()
	return b
}

// compile-time check that the analysis satisfies the slicing capability.
var _ core.SliceableClient[AbsID, RelID, FormulaID] = (*Analysis)(nil)
