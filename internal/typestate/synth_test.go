package typestate

import (
	"testing"

	"swift/internal/core"
)

// TestFromBottomUpClient runs all three engines on the Figure 1 program
// using the Section 5.1 synthesized client — only the relational side of
// the type-state analysis — and checks it reproduces the native client's
// results exactly.
func TestFromBottomUpClient(t *testing.T) {
	ts, an := figure1Analysis(t)
	synth := core.FromBottomUp[AbsID, RelID, FormulaID](ts)
	an2, err := core.NewAnalysis[AbsID, RelID, FormulaID](synth, figure1Program())
	if err != nil {
		t.Fatal(err)
	}
	// Note: an2 shares ts's interning tables (the synthesized client wraps
	// the same Analysis), so state IDs are directly comparable.
	init := ts.InitialState()
	native := an.RunTD(init, core.TDConfig())
	derived := an2.RunTD(init, core.TDConfig())
	if !native.Completed() || !derived.Completed() {
		t.Fatalf("runs failed: %v / %v", native.Err, derived.Err)
	}
	if native.TDSummaryTotal() != derived.TDSummaryTotal() {
		t.Errorf("summary totals differ: native %d, synthesized %d",
			native.TDSummaryTotal(), derived.TDSummaryTotal())
	}
	nExit := native.ExitStates("main", init)
	dExit := derived.ExitStates("main", init)
	if len(nExit) != len(dExit) {
		t.Fatalf("exit states differ: %d vs %d", len(nExit), len(dExit))
	}
	for i := range nExit {
		if nExit[i] != dExit[i] {
			t.Errorf("exit[%d]: native %s, synthesized %s",
				i, ts.StateString(nExit[i]), ts.StateString(dExit[i]))
		}
	}

	// The hybrid engine works with the synthesized client too.
	cfg := core.DefaultConfig()
	cfg.K = 2
	cfg.Theta = 2
	sw := an2.RunSwift(init, cfg)
	if !sw.Completed() {
		t.Fatalf("swift with synthesized client: %v", sw.Err)
	}
	sExit := sw.ExitStates("main", init)
	if len(sExit) != len(nExit) {
		t.Fatalf("swift exit states differ: %d vs %d", len(sExit), len(nExit))
	}
	for i := range nExit {
		if sExit[i] != nExit[i] {
			t.Errorf("swift exit[%d] differs", i)
		}
	}
}
