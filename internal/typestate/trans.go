package typestate

import (
	"fmt"

	"swift/internal/ir"
)

// This file implements the top-down transfer functions trans(c): S → 2^S of
// Figure 2, extended with must-not sets and one-field access paths (the
// paper's full implementation). Condition C1 — exact agreement with the
// relational rtrans of rel.go — is enforced by property tests.
//
// Must-not sets are manipulated through their complements (absState.nc):
// adding p to the must-not set removes it from nc, and vice versa.

// Trans implements core.Client. It conservatively updates the type-state
// and the alias sets of the incoming abstract object.
func (a *Analysis) Trans(c *ir.Prim, s AbsID) []AbsID {
	t := a.tab
	st := t.absOf(s)
	switch c.Kind {
	case ir.Nop, ir.Assert:
		return []AbsID{s}

	case ir.New:
		// The destination now points at the fresh object, so it definitely
		// does not alias the incoming object: v joins its must-not set,
		// and all other paths rooted at v become unknown.
		rooted := t.rooted(c.Dst)
		vp := a.mustPath(c.Dst, "")
		nc := t.setUnionElems(st.nc, rooted)
		if t.relevant[vp] {
			nc = t.setMinus(nc, []PathID{vp})
		}
		old := absState{
			h:  st.h,
			t:  st.t,
			a:  t.setMinus(st.a, rooted),
			nc: nc,
		}
		out := []AbsID{t.internAbs(old)}
		if site := t.siteIDs[c.Site]; a.spawnsAt(site) {
			// The fresh object is referenced only by v: every other path
			// must-not-alias it (Fink et al.'s uniqueness).
			fresh := absState{
				h:  site,
				t:  t.propBase[t.sitePropOf[site]], // the property's initial state
				a:  t.internSet([]PathID{vp}),
				nc: t.internSet(rooted),
			}
			out = append(out, t.internAbs(fresh))
		}
		return out

	case ir.Copy:
		if c.Dst == c.Src {
			return []AbsID{s}
		}
		return []AbsID{a.copyLike(st, c.Dst, a.mustPath(c.Src, ""))}

	case ir.Load:
		return []AbsID{a.copyLike(st, c.Dst, a.mustPath(c.Src, c.Field))}

	case ir.Store:
		return []AbsID{a.storeTrans(st, c.Dst, c.Field, a.mustPath(c.Src, ""))}

	case ir.TSCall:
		return []AbsID{a.tsCallTrans(st, a.mustPath(c.Dst, ""), c.Method)}

	case ir.Kill:
		rooted := t.rooted(c.Dst)
		return []AbsID{t.internAbs(absState{
			h: st.h, t: st.t,
			a:  t.setMinus(st.a, rooted),
			nc: t.setUnionElems(st.nc, rooted),
		})}
	}
	panic(fmt.Sprintf("typestate: Trans on unknown primitive %v", c.Kind))
}

// copyLike handles v = src for a variable or one-field source path: the
// destination inherits the source's known alias status with respect to the
// tracked object; all paths rooted at the destination are invalidated
// first. The source status is read before the invalidation, which makes
// self-referencing loads (v = v.f) behave correctly.
// statusA reports "src must-aliases the object" with the static relevance
// filter applied: a path that can point to no tracked object never
// must-aliases one.
func (a *Analysis) statusA(st absState, p PathID) bool {
	return a.tab.relevant[p] && a.tab.setHas(st.a, p)
}

// statusN reports "src must-not-aliases the object": statically irrelevant
// paths always do.
func (a *Analysis) statusN(st absState, p PathID) bool {
	return !a.tab.relevant[p] || a.tab.inMustNot(st, p)
}

func (a *Analysis) copyLike(st absState, dst string, src PathID) AbsID {
	t := a.tab
	inA := a.statusA(st, src)
	inN := a.statusN(st, src)
	rooted := t.rooted(dst)
	dp := a.mustPath(dst, "")
	a2 := t.setMinus(st.a, rooted)
	nc2 := t.setUnionElems(st.nc, rooted)
	switch {
	case inA && t.relevant[dp]:
		a2 = t.setInsert(a2, dp)
	case inN && t.relevant[dp]:
		nc2 = t.setMinus(nc2, []PathID{dp})
	}
	return t.internAbs(absState{h: st.h, t: st.t, a: a2, nc: nc2})
}

// storeTrans handles v.f = w. The store may overwrite the f-field of any
// object the analysis cannot distinguish from v's target, so all paths
// carrying field f lose their must status; they keep their must-not status
// only when the stored value itself must-not-alias the tracked object.
func (a *Analysis) storeTrans(st absState, dst, field string, src PathID) AbsID {
	t := a.tab
	inA := a.statusA(st, src)
	inN := a.statusN(st, src)
	ff := t.withField(field)
	vf := a.mustPath(dst, field)
	a2 := t.setMinus(st.a, ff)
	var nc2 SetID
	switch {
	case inA:
		if t.relevant[vf] {
			a2 = t.setInsert(a2, vf)
		}
		nc2 = t.setUnionElems(st.nc, ff)
	case inN:
		nc2 = st.nc
		if t.relevant[vf] {
			nc2 = t.setMinus(nc2, []PathID{vf})
		}
	default:
		nc2 = t.setUnionElems(st.nc, ff)
	}
	return t.internAbs(absState{h: st.h, t: st.t, a: a2, nc: nc2})
}

// tsCallTrans handles v.m(): a strong update when v must-alias the tracked
// object, a no-op when it must not, and otherwise the conservative
// error-or-no-op split decided by the global may-alias oracle (exactly the
// B1–B4 cases of the paper's Figure 1).
func (a *Analysis) tsCallTrans(st absState, v PathID, method string) AbsID {
	t := a.tab
	switch {
	case a.statusA(st, v):
		g := t.applyTrans(t.methodTransformer(method), st.t)
		return t.internAbs(absState{h: st.h, t: g, a: st.a, nc: st.nc})
	case a.statusN(st, v):
		return t.internAbs(st)
	case t.mayAlias[v][st.h]:
		g := t.applyTrans(t.errTrans, st.t)
		return t.internAbs(absState{h: st.h, t: g, a: st.a, nc: st.nc})
	default:
		return t.internAbs(st)
	}
}
