// Package wire implements the tiny binary substrate shared by the
// persistent-store codecs (typestate tables, bottom-up summaries, top-down
// result tables): a sticky-error writer/reader pair over uvarint-framed
// primitives. Encoders write into an in-memory buffer and are infallible;
// decoders accumulate the first malformed-input error and turn every
// subsequent read into a no-op, so codec code reads a whole record straight
// through and checks the error once at the end. Malformed input never
// panics — a corrupt store entry must degrade to a cache miss, not crash
// the analysis.
//
// All integers are unsigned varints (zigzag-folded for signed values), so
// encodings are platform-independent and byte-identical for equal values —
// the property the store's decode→re-encode tests pin.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates an encoded record. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded record. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Raw appends bytes verbatim (magic tags, digests).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Uint appends an unsigned varint.
func (w *Writer) Uint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int appends a zigzag-folded signed varint.
func (w *Writer) Int(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Bool appends a one-byte boolean.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// WriteI32s appends a length-prefixed slice of int32-kinded values
// (interned IDs, FSM states, literals). Values are zigzag-folded so
// negative sentinels survive.
func WriteI32s[T ~int32](w *Writer, xs []T) {
	w.Uint(uint64(len(xs)))
	for _, x := range xs {
		w.Int(int64(x))
	}
}

// Reader decodes a record produced by Writer. The first malformed read
// sets the sticky error; every later read returns a zero value.
type Reader struct {
	data []byte
	pos  int
	err  error
}

// NewReader returns a reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Expect consumes len(tag) bytes and checks they equal tag (magic headers).
func (r *Reader) Expect(tag string) {
	b := r.Raw(len(tag))
	if r.err == nil && string(b) != tag {
		r.fail("bad magic: got %q, want %q", b, tag)
	}
}

// Raw consumes n bytes verbatim. The returned slice aliases the input.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.fail("truncated input: need %d bytes at offset %d of %d", n, r.pos, len(r.data))
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

// Uint consumes an unsigned varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Int consumes a zigzag-folded signed varint.
func (r *Reader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail("bad varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

// Bool consumes a one-byte boolean.
func (r *Reader) Bool() bool {
	b := r.Raw(1)
	if r.err != nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	}
	r.fail("bad boolean byte %d at offset %d", b[0], r.pos-1)
	return false
}

// Len consumes a length prefix and bounds-checks it against the remaining
// input, assuming each element occupies at least one byte. This is what
// keeps a corrupt length from allocating gigabytes before the truncation
// is noticed.
func (r *Reader) Len() int {
	n := r.Uint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail("length %d exceeds %d remaining bytes", n, len(r.data)-r.pos)
		return 0
	}
	return int(n)
}

// String consumes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	return string(r.Raw(n))
}

// ReadI32s consumes a slice written by WriteI32s.
func ReadI32s[T ~int32](r *Reader) []T {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]T, n)
	for i := range out {
		v := r.Int()
		if v < -1<<31 || v > 1<<31-1 {
			r.fail("value %d overflows int32", v)
			return nil
		}
		out[i] = T(v)
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Done checks that the whole record was consumed cleanly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.data) {
		return fmt.Errorf("wire: %d trailing bytes after record", len(r.data)-r.pos)
	}
	return nil
}
